// Package uaqetp (Uncertainty-Aware Query Execution Time Prediction) is
// the public API of this reproduction of Wu, Wu, Hacıgümüş and
// Naughton's VLDB 2014 paper. Instead of a point estimate, the
// predictor returns the distribution of a query's likely running time,
// t_q ~ N(E[t_q], Var[t_q]).
//
// # The pipeline
//
// A System is an assembly of four explicit stages, each behind an
// interface with the paper's implementation as the default:
//
//   - Planner    — query → physical plan(s) (left-deep join orders)
//   - Estimator  — plan → per-operator selectivity distributions
//     (sampling pass, memoized per plan and per subplan)
//   - Predictor  — plan + estimates → running-time distribution
//     (variance propagation over calibrated cost units)
//   - Executor   — plan → measured seconds (simulated hardware)
//
// Open assembles the defaults; any stage can be overridden through the
// corresponding Config field or swapped on a derived façade via
// System.With. The Predictor stage additionally sits behind an
// atomically swappable handle (SwapPredictor, Recalibrate), so a
// serving layer can recalibrate cost units live without dropping
// in-flight queries.
//
// # Calls
//
// The v2 entry points take a context.Context and per-call functional
// options:
//
//	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
//	pred, err := sys.PredictContext(ctx, q)
//	best, all, err := sys.ChoosePlanContext(ctx, q,
//	    uaqetp.WithMaxAlts(4), uaqetp.WithQuantile(0.9))
//	actual, err := sys.ExecuteContext(ctx, q,
//	    uaqetp.WithPlanHint(best.Plan))
//
// Cancellation propagates through every stage and through the batch
// worker pool (PredictBatchContext, ExecuteBatchContext), which returns
// promptly with ctx.Err once the context fires. The v1 methods
// (Predict, Execute, Alternatives, ChoosePlan, PredictBatch, ...)
// remain as thin deprecated wrappers over the context forms.
//
// # Concurrency
//
// A System is safe for concurrent use by multiple goroutines: all state
// assembled by Open is immutable afterwards — the one deliberate
// exception is the predictor handle, which changes only by atomic swap
// — and every per-call source of randomness is derived
// deterministically from Config.Seed plus a fingerprint of the query at
// hand rather than drawn from a shared stream. Consequently results are
// reproducible for a fixed seed no matter how many goroutines are in
// flight or in which order calls interleave: predictions are pure
// functions of (Config, Query), and Execute returns the same measured
// time for the same query on the same System.
//
// PredictBatchContext is the throughput-oriented entry point: it fans a
// batch of queries out over a bounded worker pool and returns
// predictions in input order, byte-identical to a serial loop
// regardless of WithWorkers. The default Estimator memoizes sampling
// passes at two granularities through a sharded LRU: whole plans by
// canonical signature (concurrent requests for the same signature are
// coalesced onto a single pass), and individual subplans by subtree
// signature, so the alternative join orders enumerated inside one
// AlternativesContext or ChoosePlanContext call share their common
// subtrees' passes. Setting Config.Cache to a shared EstimateCache
// extends both levels of sharing across Systems: tenants whose
// configurations generate the same database and samples reuse each
// other's passes, the substrate of the multi-tenant serving layer in
// internal/serve.
//
// EstimateCache is an interface, not a concrete type: NewEstimateCache
// returns the in-process sharded-LRU implementation (MemoryCache), and
// NewTieredCache wraps the same storage in a deterministic model of a
// local/remote split — a seeded hash assigns each key a tier, remote
// lookups accrue a modeled latency, TierStats reports the traffic by
// tier. Anything satisfying the interface (its section methods are
// unexported, so implementations wrap a MemoryCache) slots into
// Config.Cache unchanged; the sharded serving topology in
// internal/shard and internal/sim exercises the tiered one.
//
// # Heterogeneous machines
//
// The machine a System predicts for is a first-class value: a
// hardware.Profile, constructible from a JSON spec or derived from a
// preset (Scale, WithDrift). System.WithMachine derives a cheap sibling
// System for a different machine — sharing the database, catalog,
// samples, and estimate cache, owning its own calibration, predictor
// handle, and executor — so a heterogeneous fleet costs one Open plus
// one calibration per distinct machine. Estimates and run results are
// machine-independent by key construction and flow freely between
// siblings; calibrated units never do. The cluster simulator
// (internal/sim) builds mixed fleets this way and routes on each
// machine's own predicted distributions.
package uaqetp

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/calib"
	"repro/internal/calibrate"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Re-exported types: queries and predicates are declared against the
// plan and engine packages; predictions come from core.
type (
	// Query is a declarative selection-join(+aggregate) query.
	Query = plan.Query
	// JoinCond is an equijoin condition.
	JoinCond = plan.JoinCond
	// AggSpec requests an aggregate on top of the join tree.
	AggSpec = plan.AggSpec
	// Predicate is a single-column comparison.
	Predicate = engine.Predicate
	// Prediction is the distribution of likely running times.
	Prediction = core.Prediction
	// OpPrediction is the per-operator share of a prediction.
	OpPrediction = core.OpPrediction
	// Variant selects a predictor ablation (Section 6.3.3).
	Variant = core.Variant
	// DBKind names one of the four evaluation databases.
	DBKind = datagen.DBKind
	// RNGVersion selects the measurement-stream generation (see
	// internal/rng): RNGv1 is the historical math/rand stream, RNGv2 the
	// zero-allocation counter-based stream. The zero value is RNGv1, so
	// existing Configs keep their byte-identical measured times.
	RNGVersion = rng.Version
)

// Measurement-stream versions.
const (
	RNGv1 = rng.V1
	RNGv2 = rng.V2
)

// Comparison operators for predicates.
const (
	Lt      = engine.Lt
	Le      = engine.Le
	Eq      = engine.Eq
	Ge      = engine.Ge
	Gt      = engine.Gt
	Between = engine.Between
)

// Predictor variants.
const (
	All    = core.All
	NoVarC = core.NoVarC
	NoVarX = core.NoVarX
	NoCov  = core.NoCov
)

// Evaluation databases.
const (
	Uniform1G  = datagen.Uniform1G
	Skewed1G   = datagen.Skewed1G
	Uniform10G = datagen.Uniform10G
	Skewed10G  = datagen.Skewed10G
)

// Typed failures of plan selection.
var (
	// ErrNoPlans reports that the planner produced no candidate plans
	// for a query (possible with a custom Planner stage; the built-in
	// planner always returns at least the default plan).
	ErrNoPlans = errors.New("no candidate plans")
	// ErrPlanHintNotFound reports that no enumerated alternative matched
	// the signature given via WithPlanHint.
	ErrPlanHintNotFound = errors.New("plan hint matched no alternative")
)

// Config describes how to assemble a System.
type Config struct {
	// DB selects the synthetic database (size and skew).
	DB DBKind
	// Machine names a registered hardware profile (hardware.ProfileByName;
	// the presets are "PC1" and "PC2"). Parameterized profiles — JSON
	// specs, Scale/WithDrift derivations — enter through System.WithMachine
	// instead of this field.
	Machine string
	// SamplingRatio is the offline sample size as a fraction of each
	// table (the paper's SR).
	SamplingRatio float64
	// Variant configures the predictor.
	Variant Variant
	// Seed drives all randomness deterministically.
	Seed int64
	// RNG selects the measurement-stream version (internal/rng). The
	// zero value is RNGv1 — the historical math/rand stream, so every
	// measured time pinned before the seam existed stays byte-identical.
	// RNGv2 draws statistically equivalent times from a counter-based
	// stream at a fraction of the cost (no per-execution seeding ritual,
	// zero allocation). Like every other field it participates in Config
	// comparability, so internal/serve dedups tenants per version.
	RNG RNGVersion
	// Cache, when non-nil, is a shared sampling-pass cache backing this
	// System instead of a private per-System memo. Multiple Systems may
	// share one cache: keys are namespaced by everything that determines
	// a sampling pass (DB kind, sampling ratio, seed), so tenants over
	// the same generated database and samples share passes while
	// incompatible tenants never collide.
	Cache EstimateCache

	// Planner, Estimator, Predictor, and Executor override the
	// corresponding pipeline stage; nil selects the built-in
	// implementation. Predictor and Executor stages can be implemented
	// from scratch (their outputs are public types); custom Planner and
	// Estimator stages are decorators over the built-in ones, so install
	// them after Open via sys.With(WithPlanner(...)) wrapping
	// sys.Planner() / sys.Estimator() rather than through these fields.
	// Stage values should be pointer types when the Config may be
	// compared (internal/serve dedups tenant configs with all four left
	// nil).
	Planner   Planner
	Estimator Estimator
	Predictor Predictor
	Executor  Executor

	// Observer, when non-nil, receives one calib.Observation per
	// (prediction, measured time) pair produced by PredictAndRunContext
	// and Measure — the calibration observatory's feed for direct System
	// use (the serving layer has its own outcome-path hook in
	// serve.Config). Must be safe for concurrent use; should be a
	// pointer type when the Config may be compared.
	Observer calib.Observer
}

// DefaultConfig returns a uniform "1 GB" database on PC1 with a 5%
// sampling ratio and the complete predictor.
func DefaultConfig() Config {
	return Config{
		DB:            Uniform1G,
		Machine:       "PC1",
		SamplingRatio: 0.05,
		Variant:       All,
		Seed:          1,
	}
}

// estimateMemoSize bounds the per-System LRU memo of sampling passes,
// keyed by canonical plan signature.
const estimateMemoSize = 256

// System is an assembled prediction pipeline over a synthetic database
// and simulated hardware: four stages (Planner, Estimator, Predictor,
// Executor) over shared immutable layers. All fields are immutable
// after Open except the predictor handle, which changes only by atomic
// swap (SwapPredictor, Recalibrate); see the package documentation for
// the concurrency contract.
type System struct {
	cfg     Config
	db      *engine.DB
	cat     *catalog.Catalog
	profile *hardware.Profile
	cal     *calibrate.Result
	samples *sample.DB
	// truth, when set (drift injection), resolves the profile Recalibrate
	// measures: the System's *current* ground truth, which may differ
	// from the static profile until the drift's TruthSwitch fires.
	truth func() *hardware.Profile

	planner   Planner
	estimator Estimator
	executor  Executor
	// pred is the hot-swappable predictor stage; each façade derived by
	// With gets its own handle.
	pred *predictorHandle

	// estCache memoizes sampling passes (shared across Systems when
	// Config.Cache is set); estNS prefixes this System's keys so only
	// compatible Systems share entries. runNS prefixes the run-result
	// section's keys; it omits machine and sampling ratio, which run
	// results do not depend on.
	estCache EstimateCache
	estNS    string
	runNS    string
}

// Open generates the database, builds statistics, calibrates the cost
// units against the simulated machine, draws the offline samples, and
// wires the four pipeline stages (built-in unless overridden in cfg).
func Open(cfg Config) (*System, error) {
	if cfg.Machine == "" {
		cfg.Machine = "PC1"
	}
	if cfg.SamplingRatio <= 0 {
		cfg.SamplingRatio = 0.05
	}
	profile, err := hardware.ProfileByName(cfg.Machine)
	if err != nil {
		return nil, err
	}
	db := datagen.Generate(datagen.ConfigFor(cfg.DB, cfg.Seed))
	cat := catalog.Build(db)
	cal, err := calibrate.Run(profile, calibrate.DefaultConfig(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	samples, err := sample.Build(db, cfg.SamplingRatio, sample.DefaultCopies, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	estCache := cfg.Cache
	if estCache == nil {
		estCache = NewEstimateCache(estimateMemoSize)
	}
	s := &System{
		cfg:      cfg,
		db:       db,
		cat:      cat,
		profile:  profile,
		cal:      cal,
		samples:  samples,
		estCache: estCache,
		estNS:    estimateNamespace(cfg),
		runNS:    runNamespace(cfg),
	}
	s.planner = cfg.Planner
	if s.planner == nil {
		s.planner = newDefaultPlanner(cat)
	}
	s.estimator = cfg.Estimator
	if s.estimator == nil {
		s.estimator = &defaultEstimator{samples: samples, cat: cat, cache: estCache, ns: s.estNS}
	}
	s.executor = cfg.Executor
	if s.executor == nil {
		s.executor = simExecutor{db: db, profile: profile, seed: cfg.Seed, cache: estCache, runNS: s.runNS, ver: cfg.RNG}
	}
	if cfg.Predictor != nil {
		s.pred = newPredictorHandle(&predictorState{stage: cfg.Predictor})
	} else {
		s.pred = newPredictorHandle(defaultPredictorState(cat, cal.Units, cfg.Variant))
	}
	return s, nil
}

// Config returns a copy of the configuration this System was opened
// with (after Open's defaulting).
func (s *System) Config() Config { return s.cfg }

// WithVariant returns a System predicting with variant v but sharing
// everything else with s — database, catalog, calibration, samples, and
// the estimate cache. Deriving a variant is cheap (no regeneration), so
// ablation grids can fan a single Open out across all variants. The
// derived System's predictor is the built-in stage for v over the
// current units (recalibrated units carry over; a custom stage does
// not).
func (s *System) WithVariant(v Variant) *System {
	if v == s.cfg.Variant {
		return s
	}
	units := s.cal.Units
	if st := s.pred.load(); st.units != nil {
		units = *st.units
	}
	derived := s.With()
	derived.cfg.Variant = v
	derived.pred = newPredictorHandle(defaultPredictorState(s.cat, units, v))
	return derived
}

// WithSamplingRatio returns a System with freshly drawn samples at
// ratio sr, sharing the generated database, catalog, calibration, and
// estimate cache with s. Sampling-ratio sweeps (Section 6 grids) can
// thus reuse one expensive Open per (DB, machine, seed) environment.
// The derived System's cache keys include the new ratio, so it never
// shares sampling passes with differently-sampled tenants. A custom
// Estimator stage is carried over unchanged; the built-in one is
// rebuilt on the new samples.
func (s *System) WithSamplingRatio(sr float64) (*System, error) {
	if sr == s.cfg.SamplingRatio {
		return s, nil
	}
	if sr <= 0 {
		return nil, fmt.Errorf("uaqetp: sampling ratio %g out of (0, 1]", sr)
	}
	samples, err := sample.Build(s.db, sr, sample.DefaultCopies, s.cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	derived := s.With()
	derived.cfg.SamplingRatio = sr
	derived.samples = samples
	derived.estNS = estimateNamespace(derived.cfg)
	if _, ok := s.estimator.(*defaultEstimator); ok {
		derived.estimator = &defaultEstimator{
			samples: samples, cat: s.cat, cache: s.estCache, ns: derived.estNS,
		}
	}
	return derived, nil
}

// WithMachine returns a System running on the given machine profile but
// sharing everything machine-independent with s: the generated
// database, catalog, samples, and the estimate cache. The derived
// System owns what does depend on the machine — a fresh calibration of
// the cost units against p (deterministic per Config.Seed, exactly as
// Open would produce), its own hot-swappable predictor handle over
// those units, and an executor measuring on p — so a heterogeneous
// fleet is a set of cheap WithMachine siblings over one expensive Open.
//
// Cache sharing is safe by key construction: the plan- and subtree-pass
// sections' namespaces fingerprint only (DB, sampling ratio, seed), and
// the run section only (DB, seed) — estimates and run results are
// machine-independent, so siblings share them, while calibration and
// measured times are never cached and stay per machine
// (TestWithMachineSharesCachesNotUnits pins both directions).
//
// Like WithVariant, the derived System's predictor is the built-in
// stage over the fresh units; a custom Predictor stage does not carry
// over. A custom Executor stage is carried over unchanged (the built-in
// one is rebuilt on p). A profile equal to the current machine's
// returns s itself.
func (s *System) WithMachine(p *hardware.Profile) (*System, error) {
	if p == nil {
		return nil, fmt.Errorf("uaqetp: nil machine profile")
	}
	if *p == *s.profile {
		return s, nil
	}
	prof := *p // private copy: profiles are values, callers may mutate theirs
	cal, err := calibrate.Run(&prof, calibrate.DefaultConfig(s.cfg.Seed+1))
	if err != nil {
		return nil, fmt.Errorf("uaqetp: calibrate %q: %w", prof.Name, err)
	}
	derived := s.With()
	derived.cfg.Machine = prof.Name
	derived.profile = &prof
	derived.cal = cal
	derived.pred = newPredictorHandle(defaultPredictorState(s.cat, cal.Units, s.cfg.Variant))
	if _, ok := s.executor.(simExecutor); ok {
		derived.executor = simExecutor{
			db: s.db, profile: &prof, seed: s.cfg.Seed, cache: s.estCache, runNS: s.runNS, ver: s.cfg.RNG,
		}
	}
	return derived, nil
}

// Machine returns the profile of the machine this System predicts for
// and executes on (a copy; profiles are values).
func (s *System) Machine() hardware.Profile { return *s.profile }

// resolvePlan picks the plan a call operates on: the planner's default
// plan, or — under WithPlanHint — the enumerated alternative whose
// signature matches the hint.
func (s *System) resolvePlan(ctx context.Context, q *Query, o callOpts) (*Plan, error) {
	if q == nil {
		return nil, fmt.Errorf("uaqetp: nil query")
	}
	if o.planHint == "" {
		p, err := s.planner.BuildPlan(ctx, q)
		if err != nil {
			return nil, err
		}
		return p, p.valid()
	}
	alts, err := s.planner.Alternatives(ctx, q, o.maxAlts)
	if err != nil {
		return nil, err
	}
	for _, p := range alts {
		if p != nil && p.sig == o.planHint {
			return p, p.valid()
		}
	}
	return nil, fmt.Errorf("uaqetp: %q: %w (among %d alternatives)",
		queryName(q), ErrPlanHintNotFound, len(alts))
}

// predictResolved runs plan → estimate → predict for an already
// resolved plan on one consistent predictor stage.
func (s *System) predictResolved(ctx context.Context, p *Plan, stage Predictor) (*Prediction, error) {
	est, err := s.estimator.Estimate(ctx, p)
	if err != nil {
		return nil, err
	}
	return stage.Predict(ctx, p, est)
}

// PredictContext returns the distribution of likely running times for
// the query — the paper's t_q ~ N(E[t_q], Var[t_q]) — by routing the
// query through the Planner, Estimator, and Predictor stages.
// WithPlanHint predicts a specific alternative instead of the default
// plan.
func (s *System) PredictContext(ctx context.Context, q *Query, opts ...CallOption) (*Prediction, error) {
	pred, _, err := s.PredictPlannedContext(ctx, q, opts...)
	return pred, err
}

// PredictPlannedContext returns the prediction together with the plan's
// canonical signature, so serving-path callers that need both (e.g. for
// per-signature feedback) resolve the physical plan once.
func (s *System) PredictPlannedContext(ctx context.Context, q *Query, opts ...CallOption) (*Prediction, string, error) {
	o := newCallOpts(opts)
	p, err := s.resolvePlan(ctx, q, o)
	if err != nil {
		return nil, "", err
	}
	pred, err := s.predictResolved(ctx, p, s.Predictor())
	if err != nil {
		return nil, "", err
	}
	return pred, p.sig, nil
}

// ExecuteContext runs the query through the Executor stage (by default
// the simulated hardware, measuring the 5-run average the paper uses)
// and returns the measured running time in seconds. WithPlanHint
// executes a specific alternative instead of the default plan.
func (s *System) ExecuteContext(ctx context.Context, q *Query, opts ...CallOption) (float64, error) {
	o := newCallOpts(opts)
	p, err := s.resolvePlan(ctx, q, o)
	if err != nil {
		return 0, err
	}
	return s.executor.Execute(ctx, q, p)
}

// PlanChoice pairs one candidate physical plan with its predicted
// running-time distribution. Plan is the plan's canonical signature,
// replayable through WithPlanHint.
type PlanChoice struct {
	Plan string // rendered plan tree (canonical signature)
	Pred *Prediction
}

// AlternativesContext enumerates alternative plans for the query
// (bounded by WithMaxAlts) and predicts each one's running-time
// distribution — the raw material for least-expected-cost plan
// selection (Section 6.5.1). Alternatives sharing subtrees share those
// subtrees' sampling passes through the estimator's subplan memo.
func (s *System) AlternativesContext(ctx context.Context, q *Query, opts ...CallOption) ([]PlanChoice, error) {
	o := newCallOpts(opts)
	if q == nil {
		return nil, fmt.Errorf("uaqetp: nil query")
	}
	plans, err := s.planner.Alternatives(ctx, q, o.maxAlts)
	if err != nil {
		return nil, err
	}
	stage := s.Predictor()
	choices := make([]PlanChoice, 0, len(plans))
	for _, p := range plans {
		if err := p.valid(); err != nil {
			return nil, err
		}
		pred, err := s.predictResolved(ctx, p, stage)
		if err != nil {
			return nil, err
		}
		choices = append(choices, PlanChoice{Plan: p.sig, Pred: pred})
	}
	return choices, nil
}

// ChoosePlanContext picks among the query's alternative plans by the
// risk quantile of the predicted distribution (WithQuantile; 0.5
// approximates least expected cost, 0.9 is risk-averse). It returns the
// chosen plan and all considered alternatives. A planner that produces
// no candidates yields ErrNoPlans.
func (s *System) ChoosePlanContext(ctx context.Context, q *Query, opts ...CallOption) (best PlanChoice, all []PlanChoice, err error) {
	o := newCallOpts(opts)
	if o.quantile <= 0 || o.quantile >= 1 {
		return PlanChoice{}, nil, fmt.Errorf("uaqetp: risk quantile %g out of (0, 1)", o.quantile)
	}
	all, err = s.AlternativesContext(ctx, q, opts...)
	if err != nil {
		return PlanChoice{}, nil, err
	}
	if len(all) == 0 {
		return PlanChoice{}, nil, fmt.Errorf("uaqetp: ChoosePlan %q: %w", queryName(q), ErrNoPlans)
	}
	bestIdx := 0
	bestCost := all[0].Pred.Dist.Quantile(o.quantile)
	for i := 1; i < len(all); i++ {
		if c := all[i].Pred.Dist.Quantile(o.quantile); c < bestCost {
			bestIdx, bestCost = i, c
		}
	}
	return all[bestIdx], all, nil
}

// PredictAndRunContext is a convenience helper returning both the
// prediction and the measured time. When Config.Observer is set, the
// pair is also streamed to the calibration observer.
func (s *System) PredictAndRunContext(ctx context.Context, q *Query, opts ...CallOption) (*Prediction, float64, error) {
	pred, err := s.PredictContext(ctx, q, opts...)
	if err != nil {
		return nil, 0, err
	}
	actual, err := s.ExecuteContext(ctx, q, opts...)
	if err != nil {
		return nil, 0, err
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.Observe(&calib.Observation{
			Unit:      pred.DominantUnit(),
			PredMean:  pred.Mean(),
			PredSigma: pred.Sigma(),
			Observed:  actual,
		})
	}
	return pred, actual, nil
}

// Plan compiles a query into a physical plan and returns its canonical
// signature.
func (s *System) Plan(q *Query) (string, error) {
	p, err := s.planner.BuildPlan(context.Background(), q)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// ---------------------------------------------------------------------
// v1 wrappers. These predate the context API and remain as thin
// wrappers so existing callers keep working unchanged.

// Predict returns the distribution of likely running times for the
// query.
//
// Deprecated: use PredictContext, which adds cancellation and per-call
// options. Predict(q) is PredictContext(context.Background(), q).
func (s *System) Predict(q *Query) (*Prediction, error) {
	return s.PredictContext(context.Background(), q)
}

// Execute runs the query on the simulated hardware and returns the
// measured running time in seconds.
//
// Deprecated: use ExecuteContext. Execute(q) is
// ExecuteContext(context.Background(), q).
func (s *System) Execute(q *Query) (float64, error) {
	return s.ExecuteContext(context.Background(), q)
}

// PredictAndRun returns both the prediction and the measured time.
//
// Deprecated: use PredictAndRunContext.
func (s *System) PredictAndRun(q *Query) (*Prediction, float64, error) {
	return s.PredictAndRunContext(context.Background(), q)
}

// Alternatives enumerates up to maxAlts alternative join orders and
// predicts each one's running-time distribution. maxAlts < 1 keeps the
// v1 behavior of returning only the default plan (WithMaxAlts would
// instead fall back to DefaultMaxAlts).
//
// Deprecated: use AlternativesContext with WithMaxAlts.
func (s *System) Alternatives(q *Query, maxAlts int) ([]PlanChoice, error) {
	if maxAlts < 1 {
		maxAlts = 1
	}
	return s.AlternativesContext(context.Background(), q, WithMaxAlts(maxAlts))
}

// ChoosePlan picks among the query's alternative plans by the given
// risk quantile of the predicted distribution. maxAlts < 1 keeps the
// v1 behavior of considering only the default plan.
//
// Deprecated: use ChoosePlanContext with WithQuantile and WithMaxAlts.
func (s *System) ChoosePlan(q *Query, quantile float64, maxAlts int) (best PlanChoice, all []PlanChoice, err error) {
	if maxAlts < 1 {
		maxAlts = 1
	}
	return s.ChoosePlanContext(context.Background(), q,
		WithQuantile(quantile), WithMaxAlts(maxAlts))
}

// ---------------------------------------------------------------------
// Introspection over the shared layers.

// runMeasured executes a built plan and measures it with the
// deterministic per-call stream (see runSimulated); Measure uses it so
// its Actual equals the default Executor's Execute.
func (s *System) runMeasured(q *Query, p *Plan) (*engine.OpResult, float64, error) {
	return runSimulated(context.Background(), s.estCache, s.runNS, s.db, s.profile, s.cfg.Seed, s.cfg.RNG, q, p.root, p.sig)
}

// UnitDists returns the cost-unit distributions behind the current
// predictor stage in hardware unit order (cs, cr, ct, ci, co) — the
// numeric content of Table 1, reflecting the latest Recalibrate. With a
// custom Predictor stage installed it reports the Open-time
// calibration.
func (s *System) UnitDists() [hardware.NumUnits]stats.Normal {
	if st := s.pred.load(); st.units != nil {
		return *st.units
	}
	return s.cal.Units
}

// CostUnits returns the calibrated cost-unit means and standard
// deviations as formatted strings (Table 1 content).
func (s *System) CostUnits() []string {
	units := s.UnitDists()
	out := make([]string, 0, hardware.NumUnits)
	for i, u := range hardware.Units {
		d := units[i]
		out = append(out, fmt.Sprintf("%s: mean=%.4g stddev=%.4g s/op", u, d.Mu, d.Sigma))
	}
	return out
}

// GenerateWorkload produces n benchmark queries against this System's
// database, deterministically per Config.Seed — convenient input for
// PredictBatch demos and benchmarks.
func (s *System) GenerateWorkload(b workload.Benchmark, n int) ([]*Query, error) {
	return workload.Generate(b, s.cat, n, s.cfg.Seed+5)
}

// GenerateTrace produces n benchmark queries annotated with Poisson
// arrival times at meanRate queries per virtual second — a replayable
// workload trace (internal/sim's "trace" arrival process). The trace
// seed folds stream into Config.Seed, so callers replaying several
// traces over one catalog (e.g. one per simulated tenant) pass distinct
// stream values to get independent arrival sequences; generation is
// deterministic per (Config.Seed, stream).
func (s *System) GenerateTrace(b workload.Benchmark, n int, meanRate float64, stream int64) ([]workload.TraceEntry, error) {
	return workload.GenerateTrace(b, s.cat, n, s.cfg.Seed+5+stream, meanRate)
}

// TableNames returns the names of the generated tables in sorted
// (deterministic) order.
func (s *System) TableNames() []string {
	names := make([]string, 0, len(s.db.Tables))
	for n := range s.db.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
