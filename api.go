// Package uaqetp (Uncertainty-Aware Query Execution Time Prediction) is
// the public API of this reproduction of Wu, Wu, Hacıgümüş and
// Naughton's VLDB 2014 paper. It assembles the internal subsystems —
// synthetic database generation, catalog statistics, simulated hardware,
// cost-unit calibration, sampling-based selectivity estimation, logical
// cost-function fitting, and the variance-propagating predictor — behind
// a single System type.
//
// A typical session:
//
//	sys, err := uaqetp.Open(uaqetp.DefaultConfig())
//	pred, err := sys.Predict(&uaqetp.Query{
//	    Name:   "my-query",
//	    Tables: []string{"orders", "lineitem"},
//	    Joins: []uaqetp.JoinCond{{
//	        LeftTable: "orders", LeftCol: "o_orderkey",
//	        RightTable: "lineitem", RightCol: "l_orderkey",
//	    }},
//	})
//	lo, hi := pred.Interval(0.95)   // 95% confidence interval in seconds
//	actual, err := sys.Execute(...) // run it on the simulated hardware
//
// # Concurrency
//
// A System is safe for concurrent use by multiple goroutines: all state
// assembled by Open (database, catalog, samples, calibrated predictor)
// is immutable afterwards, and every per-call source of randomness is
// derived deterministically from Config.Seed plus a fingerprint of the
// query at hand rather than drawn from a shared stream. Consequently
// results are reproducible for a fixed seed no matter how many
// goroutines are in flight or in which order calls interleave: Predict
// and PredictBatch are pure functions of (Config, Query), and Execute
// returns the same measured time for the same query on the same System.
//
// PredictBatch is the throughput-oriented entry point: it fans a batch
// of queries out over a bounded worker pool and returns predictions in
// input order, byte-identical to a serial Predict loop regardless of
// BatchOptions.Workers. Structurally identical plans additionally share
// one sampling pass through a sharded LRU memo keyed by the plan's
// canonical signature — concurrent requests for the same signature are
// coalesced onto a single pass — which pays off whenever the same plan
// is predicted repeatedly, within a batch or across calls. Setting
// Config.Cache to a shared EstimateCache extends that sharing across
// Systems: tenants whose configurations generate the same database and
// samples reuse each other's passes, the substrate of the multi-tenant
// serving layer in internal/serve.
package uaqetp

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/calibrate"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/plan"
	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Re-exported types: queries and predicates are declared against the
// plan and engine packages; predictions come from core.
type (
	// Query is a declarative selection-join(+aggregate) query.
	Query = plan.Query
	// JoinCond is an equijoin condition.
	JoinCond = plan.JoinCond
	// AggSpec requests an aggregate on top of the join tree.
	AggSpec = plan.AggSpec
	// Predicate is a single-column comparison.
	Predicate = engine.Predicate
	// Prediction is the distribution of likely running times.
	Prediction = core.Prediction
	// OpPrediction is the per-operator share of a prediction.
	OpPrediction = core.OpPrediction
	// Variant selects a predictor ablation (Section 6.3.3).
	Variant = core.Variant
	// DBKind names one of the four evaluation databases.
	DBKind = datagen.DBKind
)

// Comparison operators for predicates.
const (
	Lt      = engine.Lt
	Le      = engine.Le
	Eq      = engine.Eq
	Ge      = engine.Ge
	Gt      = engine.Gt
	Between = engine.Between
)

// Predictor variants.
const (
	All    = core.All
	NoVarC = core.NoVarC
	NoVarX = core.NoVarX
	NoCov  = core.NoCov
)

// Evaluation databases.
const (
	Uniform1G  = datagen.Uniform1G
	Skewed1G   = datagen.Skewed1G
	Uniform10G = datagen.Uniform10G
	Skewed10G  = datagen.Skewed10G
)

// Config describes how to assemble a System.
type Config struct {
	// DB selects the synthetic database (size and skew).
	DB DBKind
	// Machine is "PC1" or "PC2".
	Machine string
	// SamplingRatio is the offline sample size as a fraction of each
	// table (the paper's SR).
	SamplingRatio float64
	// Variant configures the predictor.
	Variant Variant
	// Seed drives all randomness deterministically.
	Seed int64
	// Cache, when non-nil, is a shared sampling-pass cache backing this
	// System instead of a private per-System memo. Multiple Systems may
	// share one cache: keys are namespaced by everything that determines
	// a sampling pass (DB kind, sampling ratio, seed), so tenants over
	// the same generated database and samples share passes while
	// incompatible tenants never collide.
	Cache *EstimateCache
}

// DefaultConfig returns a uniform "1 GB" database on PC1 with a 5%
// sampling ratio and the complete predictor.
func DefaultConfig() Config {
	return Config{
		DB:            Uniform1G,
		Machine:       "PC1",
		SamplingRatio: 0.05,
		Variant:       All,
		Seed:          1,
	}
}

// estimateMemoSize bounds the per-System LRU memo of sampling passes,
// keyed by canonical plan signature.
const estimateMemoSize = 256

// System is an assembled prediction stack over a synthetic database and
// simulated hardware. All fields are immutable after Open; see the
// package documentation for the concurrency contract.
type System struct {
	cfg     Config
	db      *engine.DB
	cat     *catalog.Catalog
	profile *hardware.Profile
	cal     *calibrate.Result
	samples *sample.DB
	pred    *core.Predictor

	// estCache memoizes sampling passes (shared across Systems when
	// Config.Cache is set); estNS prefixes this System's keys so only
	// compatible Systems share entries.
	estCache *EstimateCache
	estNS    string
}

// Open generates the database, builds statistics, calibrates the cost
// units against the simulated machine, and draws the offline samples.
func Open(cfg Config) (*System, error) {
	if cfg.Machine == "" {
		cfg.Machine = "PC1"
	}
	if cfg.SamplingRatio <= 0 {
		cfg.SamplingRatio = 0.05
	}
	profile, err := hardware.ProfileByName(cfg.Machine)
	if err != nil {
		return nil, err
	}
	db := datagen.Generate(datagen.ConfigFor(cfg.DB, cfg.Seed))
	cat := catalog.Build(db)
	cal, err := calibrate.Run(profile, calibrate.DefaultConfig(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	samples, err := sample.Build(db, cfg.SamplingRatio, sample.DefaultCopies, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	estCache := cfg.Cache
	if estCache == nil {
		estCache = NewEstimateCache(estimateMemoSize)
	}
	return &System{
		cfg:      cfg,
		db:       db,
		cat:      cat,
		profile:  profile,
		cal:      cal,
		samples:  samples,
		pred:     core.New(cat, cal.Units, core.Config{Variant: cfg.Variant}),
		estCache: estCache,
		estNS:    estimateNamespace(cfg),
	}, nil
}

// WithVariant returns a System predicting with variant v but sharing
// everything else with s — database, catalog, calibration, samples, and
// the estimate cache. Deriving a variant is cheap (no regeneration), so
// ablation grids can fan a single Open out across all variants.
func (s *System) WithVariant(v Variant) *System {
	if v == s.cfg.Variant {
		return s
	}
	cfg := s.cfg
	cfg.Variant = v
	derived := *s
	derived.cfg = cfg
	derived.pred = core.New(s.cat, s.cal.Units, core.Config{Variant: v})
	return &derived
}

// WithSamplingRatio returns a System with freshly drawn samples at
// ratio sr, sharing the generated database, catalog, calibration, and
// estimate cache with s. Sampling-ratio sweeps (Section 6 grids) can
// thus reuse one expensive Open per (DB, machine, seed) environment.
// The derived System's cache keys include the new ratio, so it never
// shares sampling passes with differently-sampled tenants.
func (s *System) WithSamplingRatio(sr float64) (*System, error) {
	if sr == s.cfg.SamplingRatio {
		return s, nil
	}
	if sr <= 0 {
		return nil, fmt.Errorf("uaqetp: sampling ratio %g out of (0, 1]", sr)
	}
	cfg := s.cfg
	cfg.SamplingRatio = sr
	samples, err := sample.Build(s.db, sr, sample.DefaultCopies, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	derived := *s
	derived.cfg = cfg
	derived.samples = samples
	derived.estNS = estimateNamespace(cfg)
	return &derived, nil
}

// estimates runs the sampling pass for a finalized plan, memoized by the
// plan's canonical signature: structurally identical plans (same
// operators, predicates, and join order) share one pass — across
// Systems too, when a shared Config.Cache is in use and the Systems'
// databases and samples coincide. Concurrent callers with the same
// signature are coalesced onto a single computation rather than racing
// to fill the memo. Estimates are immutable once built, so a cached
// value may be served to any number of concurrent readers.
func (s *System) estimates(p *engine.Node) (*sample.Estimates, error) {
	return s.estimatesSig(p, p.String())
}

// estimatesSig is estimates with the plan signature already rendered,
// for callers that need the signature anyway (PredictPlanned): the
// recursive String() walk then happens once per request.
func (s *System) estimatesSig(p *engine.Node, sig string) (*sample.Estimates, error) {
	key := s.estNS + "\x00" + sig
	return s.estCache.getOrCompute(key, func() (*sample.Estimates, error) {
		return sample.Estimate(p, s.samples, s.cat)
	})
}

// execSeed derives the deterministic per-call RNG seed for Execute from
// the configured master seed and a fingerprint of the query and its
// plan. Two Systems with the same Config measure the same time for the
// same query; distinct queries get well-separated streams.
func execSeed(seed int64, qname, plansig string) int64 {
	h := fnv.New64a()
	h.Write([]byte(qname))
	h.Write([]byte{0})
	h.Write([]byte(plansig))
	z := uint64(seed+3) ^ h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return int64(z)
}

// Plan compiles a query into a physical plan and renders it.
func (s *System) Plan(q *Query) (string, error) {
	p, err := plan.Build(q, s.cat)
	if err != nil {
		return "", err
	}
	return p.String(), nil
}

// Predict returns the distribution of likely running times for the
// query: the paper's t_q ~ N(E[t_q], Var[t_q]).
func (s *System) Predict(q *Query) (*Prediction, error) {
	pred, _, err := s.PredictPlanned(q)
	return pred, err
}

// runMeasured executes a built plan and measures it with the
// deterministic per-call stream — the single implementation behind
// Execute and Measure, so their measured times cannot diverge.
func (s *System) runMeasured(q *Query, p *engine.Node) (*engine.OpResult, float64, error) {
	res, err := engine.Run(s.db, p)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(execSeed(s.cfg.Seed, q.Name, p.String())))
	return res, s.profile.MeasurePlan(res, rng), nil
}

// Execute runs the query on the simulated hardware and returns the
// measured running time in seconds (the 5-run average the paper uses).
func (s *System) Execute(q *Query) (float64, error) {
	p, err := plan.Build(q, s.cat)
	if err != nil {
		return 0, err
	}
	_, actual, err := s.runMeasured(q, p)
	return actual, err
}

// PredictAndRun is a convenience helper returning both the prediction
// and the measured time.
func (s *System) PredictAndRun(q *Query) (*Prediction, float64, error) {
	pred, err := s.Predict(q)
	if err != nil {
		return nil, 0, err
	}
	actual, err := s.Execute(q)
	if err != nil {
		return nil, 0, err
	}
	return pred, actual, nil
}

// PlanChoice pairs one candidate physical plan with its predicted
// running-time distribution.
type PlanChoice struct {
	Plan string // rendered plan tree
	Pred *Prediction
}

// Alternatives enumerates up to maxAlts alternative join orders for the
// query and predicts each one's running-time distribution — the raw
// material for least-expected-cost plan selection (Section 6.5.1).
func (s *System) Alternatives(q *Query, maxAlts int) ([]PlanChoice, error) {
	plans, err := plan.Alternatives(q, s.cat, maxAlts)
	if err != nil {
		return nil, err
	}
	choices := make([]PlanChoice, 0, len(plans))
	for _, p := range plans {
		est, err := s.estimates(p)
		if err != nil {
			return nil, err
		}
		pred, err := s.pred.Predict(p, est)
		if err != nil {
			return nil, err
		}
		choices = append(choices, PlanChoice{Plan: p.String(), Pred: pred})
	}
	return choices, nil
}

// ChoosePlan picks among the query's alternative plans by the given
// risk quantile of the predicted distribution (quantile 0.5 approximates
// least expected cost; 0.9 is a risk-averse choice). It returns the
// chosen plan and all considered alternatives.
func (s *System) ChoosePlan(q *Query, quantile float64, maxAlts int) (best PlanChoice, all []PlanChoice, err error) {
	all, err = s.Alternatives(q, maxAlts)
	if err != nil {
		return PlanChoice{}, nil, err
	}
	bestIdx := 0
	bestCost := all[0].Pred.Dist.Quantile(quantile)
	for i := 1; i < len(all); i++ {
		if c := all[i].Pred.Dist.Quantile(quantile); c < bestCost {
			bestIdx, bestCost = i, c
		}
	}
	return all[bestIdx], all, nil
}

// UnitDists returns the calibrated cost-unit distributions in hardware
// unit order (cs, cr, ct, ci, co) — the numeric content of Table 1.
func (s *System) UnitDists() [hardware.NumUnits]stats.Normal {
	return s.cal.Units
}

// CostUnits returns the calibrated cost-unit means and standard
// deviations as formatted strings (Table 1 content).
func (s *System) CostUnits() []string {
	out := make([]string, 0, hardware.NumUnits)
	for i, u := range hardware.Units {
		d := s.cal.Units[i]
		out = append(out, fmt.Sprintf("%s: mean=%.4g stddev=%.4g s/op", u, d.Mu, d.Sigma))
	}
	return out
}

// GenerateWorkload produces n benchmark queries against this System's
// database, deterministically per Config.Seed — convenient input for
// PredictBatch demos and benchmarks.
func (s *System) GenerateWorkload(b workload.Benchmark, n int) ([]*Query, error) {
	return workload.Generate(b, s.cat, n, s.cfg.Seed+5)
}

// TableNames returns the names of the generated tables.
func (s *System) TableNames() []string {
	names := make([]string, 0, len(s.db.Tables))
	for n := range s.db.Tables {
		names = append(names, n)
	}
	return names
}
