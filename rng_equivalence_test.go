package uaqetp

import (
	"fmt"
	"math"
	"testing"
)

// executeSamples runs n distinctly-named copies of the join query
// through sys and returns the measured times. Each name derives a
// distinct measurement-stream key, so the samples are independent
// draws from the system's measurement distribution.
func executeSamples(t *testing.T, sys *System, n int) []float64 {
	t.Helper()
	out := make([]float64, n)
	for i := range out {
		q := joinQuery()
		q.Name = fmt.Sprintf("rng-eq-%d", i)
		v, err := sys.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	return out
}

func meanCV(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs)-1)) / mean
}

// TestExecuteRNGVersionsAgreeInDistribution is the statistical-
// equivalence gate between the measurement streams: v1 (historical
// math/rand) and v2 (counter-based) must produce the same measured-time
// distribution for the same workload — same mean within a few percent,
// same relative spread — differing only in which pseudorandom draws
// realize it. A v2 bug that skewed or re-scaled measurements (wrong
// normal transform, reused draws, bad key mixing) shows up here even
// though no golden covers v2 at the root API.
func TestExecuteRNGVersionsAgreeInDistribution(t *testing.T) {
	const n = 300

	sysV1 := testSystem(t) // zero-value Config.RNG is v1
	cfgV2 := DefaultConfig()
	cfgV2.RNG = RNGv2
	sysV2, err := Open(cfgV2)
	if err != nil {
		t.Fatal(err)
	}

	m1, cv1 := meanCV(executeSamples(t, sysV1, n))
	m2, cv2 := meanCV(executeSamples(t, sysV2, n))
	t.Logf("v1: mean %.6g cv %.4f; v2: mean %.6g cv %.4f", m1, cv1, m2, cv2)

	if rel := math.Abs(m2-m1) / m1; rel > 0.05 {
		t.Errorf("v1/v2 measured-time means differ by %.1f%% (v1 %.6g, v2 %.6g)", rel*100, m1, m2)
	}
	if cv1 > 0 {
		if rel := math.Abs(cv2-cv1) / cv1; rel > 0.30 {
			t.Errorf("v1/v2 coefficients of variation differ by %.0f%% (v1 %.4f, v2 %.4f)", rel*100, cv1, cv2)
		}
	}
}

// TestExecuteWarmAllocsV2 pins the alloc count of a warm Execute under
// the v2 measurement stream: with the plan memo warm, an execution is
// the engine run plus a stack-allocated measurement stream — the v1
// path's per-execution rand.Rand (and its ~5 KB seeding) must not
// creep back in.
func TestExecuteWarmAllocsV2(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	cfg := DefaultConfig()
	cfg.RNG = RNGv2
	sys, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := joinQuery()
	if _, err := sys.Execute(q); err != nil {
		t.Fatal(err)
	}
	perCall := testing.AllocsPerRun(50, func() {
		if _, err := sys.Execute(q); err != nil {
			t.Fatal(err)
		}
	})
	cfg.RNG = RNGv1
	sysV1, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sysV1.Execute(q); err != nil {
		t.Fatal(err)
	}
	perCallV1 := testing.AllocsPerRun(50, func() {
		if _, err := sysV1.Execute(q); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm Execute: v2 %.1f allocs/call, v1 %.1f allocs/call", perCall, perCallV1)
	if perCall >= perCallV1 {
		t.Errorf("warm v2 Execute allocates %.1f allocs/call, not below v1's %.1f", perCall, perCallV1)
	}
}
