package uaqetp

import (
	"context"
	"testing"
)

// TestRunCacheStripsRows pins the run-section memory contract on the
// pooled execution path: the LRU must hold only stripped result trees —
// per-operator counts, cardinalities, and selectivities, never the
// materialized rows, which are the overwhelming bulk of an OpResult.
// Execute here reaches the cache through the same runSimulated seam the
// serve drain path's pooled outcomes use, so a regression in either
// pins row data fleet-wide.
func TestRunCacheStripsRows(t *testing.T) {
	sys := testSystem(t)
	q := joinQuery()
	if _, err := sys.Execute(q); err != nil {
		t.Fatal(err)
	}
	p, err := sys.planner.BuildPlan(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := sys.estCache.(*MemoryCache).runs.Get(sys.runNS + "\x00" + p.sig)
	if !ok {
		t.Fatal("executed plan not in the run cache")
	}
	for _, op := range res.Results() {
		if op.Rows != nil || op.Cols != nil {
			t.Errorf("cached result for %v retains materialized rows (%d rows, %d cols)",
				op.Node.Kind, len(op.Rows), len(op.Cols))
		}
	}
}
