package uaqetp

import (
	"context"
	"fmt"

	"repro/internal/calib"
)

// OpDetail pairs one selective operator's estimated selectivity
// distribution with its ground truth from an actual run.
type OpDetail struct {
	EstSel   float64 // sampling-estimated selectivity
	EstSigma float64 // estimated standard deviation of the selectivity
	TrueSel  float64 // observed selectivity
}

// Measurement is the instrumented counterpart of Execute: the measured
// running time plus the ground truth the experiment harness needs — the
// simulated cost of the sampling pass vs. the full run (Section 6.4
// overhead) and the per-operator selectivity observations (Tables 6-9).
// It is independent of the predictor variant, so ablation grids can
// measure once per query and reuse.
type Measurement struct {
	Actual     float64 // measured running time in seconds (same as Execute)
	SampleCost float64 // simulated cost of the sampling pass
	FullCost   float64 // simulated cost of the full run
	Ops        []OpDetail
}

// Measure executes the query on the built-in simulator with the same
// deterministic per-call seeding as the default Executor — so
// Measure(q).Actual equals Execute(q) unless a custom Executor stage is
// installed — and additionally reports the sampling overhead and
// per-operator selectivity ground truth. The plan comes from the
// Planner stage and the estimates from the Estimator stage (which must
// be, or wrap, the built-in sampling estimator).
func (s *System) Measure(q *Query) (*Measurement, error) {
	ctx := context.Background()
	p, err := s.planner.BuildPlan(ctx, q)
	if err != nil {
		return nil, err
	}
	if err := p.valid(); err != nil {
		return nil, err
	}
	ests, err := s.estimator.Estimate(ctx, p)
	if err != nil {
		return nil, err
	}
	if ests == nil || ests.est == nil {
		return nil, fmt.Errorf("uaqetp: Measure needs sampling estimates (custom Estimator returned none)")
	}
	est := ests.est
	res, actual, err := s.runMeasured(q, p)
	if err != nil {
		return nil, err
	}
	if s.cfg.Observer != nil {
		// Feed the calibration observatory: Measure is the instrumented
		// execute, so pair its measured time with what the current
		// predictor stage would have promised for this plan.
		if pred, perr := s.predictResolved(ctx, p, s.Predictor()); perr == nil {
			s.cfg.Observer.Observe(&calib.Observation{
				Unit:      pred.DominantUnit(),
				PredMean:  pred.Mean(),
				PredSigma: pred.Sigma(),
				Observed:  actual,
			})
		}
	}
	m := &Measurement{
		Actual:     actual,
		SampleCost: s.profile.ExpectedCost(est.TotalSampleCounts()),
		FullCost:   s.profile.ExpectedCost(res.TotalCounts()),
	}
	for _, opRes := range res.Results() {
		n := opRes.Node
		if !n.Kind.IsScan() && !n.Kind.IsJoin() {
			continue
		}
		oe, err := est.Get(n)
		if err != nil || oe.FromOptimizer {
			continue
		}
		m.Ops = append(m.Ops, OpDetail{
			EstSel:   oe.Rho,
			EstSigma: oe.Sigma(),
			TrueSel:  opRes.Selectivity,
		})
	}
	return m, nil
}
