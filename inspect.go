package uaqetp

import (
	"repro/internal/plan"
)

// OpDetail pairs one selective operator's estimated selectivity
// distribution with its ground truth from an actual run.
type OpDetail struct {
	EstSel   float64 // sampling-estimated selectivity
	EstSigma float64 // estimated standard deviation of the selectivity
	TrueSel  float64 // observed selectivity
}

// Measurement is the instrumented counterpart of Execute: the measured
// running time plus the ground truth the experiment harness needs — the
// simulated cost of the sampling pass vs. the full run (Section 6.4
// overhead) and the per-operator selectivity observations (Tables 6-9).
// It is independent of the predictor variant, so ablation grids can
// measure once per query and reuse.
type Measurement struct {
	Actual     float64 // measured running time in seconds (same as Execute)
	SampleCost float64 // simulated cost of the sampling pass
	FullCost   float64 // simulated cost of the full run
	Ops        []OpDetail
}

// Measure executes the query like Execute — same deterministic per-call
// seeding, so Measure(q).Actual equals Execute(q) — and additionally
// reports the sampling overhead and per-operator selectivity ground
// truth.
func (s *System) Measure(q *Query) (*Measurement, error) {
	p, err := plan.Build(q, s.cat)
	if err != nil {
		return nil, err
	}
	est, err := s.estimates(p)
	if err != nil {
		return nil, err
	}
	res, actual, err := s.runMeasured(q, p)
	if err != nil {
		return nil, err
	}
	m := &Measurement{
		Actual:     actual,
		SampleCost: s.profile.ExpectedCost(est.TotalSampleCounts()),
		FullCost:   s.profile.ExpectedCost(res.TotalCounts()),
	}
	for _, opRes := range res.Results() {
		n := opRes.Node
		if !n.Kind.IsScan() && !n.Kind.IsJoin() {
			continue
		}
		oe, err := est.Get(n)
		if err != nil || oe.FromOptimizer {
			continue
		}
		m.Ops = append(m.Ops, OpDetail{
			EstSel:   oe.Rho,
			EstSigma: oe.Sigma(),
			TrueSel:  opRes.Selectivity,
		})
	}
	return m, nil
}
