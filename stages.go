package uaqetp

// The v2 pipeline: the prediction path is four explicit, composable
// stages — Planner, Estimator, Predictor, Executor — assembled by Open
// from the built-in implementations, overridable per System via Config
// or System.With, and (for the predictor) hot-swappable at runtime so a
// serving layer can recalibrate without dropping in-flight queries.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/calibrate"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/plan"
	"repro/internal/rng"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Plan is a compiled physical plan: an opaque pairing of the operator
// tree with its canonical signature. Two Plans with equal String() are
// structurally identical (same operators, predicates, and join order);
// the signature is the currency of the plan-hint option and the
// estimate caches. Plans are produced by a Planner — the zero value is
// not a valid plan.
type Plan struct {
	root *engine.Node
	sig  string
}

// String returns the plan's canonical signature (a rendered tree).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	return p.sig
}

// valid rejects plans not produced by a Planner.
func (p *Plan) valid() error {
	if p == nil || p.root == nil {
		return fmt.Errorf("uaqetp: empty plan (plans must come from a Planner)")
	}
	return nil
}

// Estimates is the result of one sampling pass over a plan: every
// operator's selectivity distribution. It is opaque — produced by an
// Estimator, consumed by a Predictor — and immutable, so one value may
// serve any number of concurrent readers.
type Estimates struct {
	est *sample.Estimates
}

// Planner compiles queries into physical plans: the default enumerates
// left-deep join orders greedily by connectivity, exactly as v1 did.
//
// Plan values can only be produced by the built-in planner (they wrap
// an internal operator tree), so a custom Planner is a decorator: derive
// it with sys.With(WithPlanner(...)) wrapping sys.Planner(), and have it
// filter, reorder, cap, or re-rank the inner stage's plans. The same
// holds for Estimator and its opaque Estimates. Predictor and Executor
// stages, whose outputs (Prediction, float64) are public, can be
// implemented from scratch — e.g. test stubs injected via Config.
type Planner interface {
	// BuildPlan compiles the query's default plan.
	BuildPlan(ctx context.Context, q *Query) (*Plan, error)
	// Alternatives enumerates up to maxAlts candidate plans, the default
	// plan first. Implementations may return fewer, including zero.
	Alternatives(ctx context.Context, q *Query, maxAlts int) ([]*Plan, error)
}

// Estimator turns a plan into per-operator selectivity distributions.
// The default runs the paper's sampling pass (Section 3.2), memoized at
// two granularities: whole plans by canonical signature, and individual
// subplans by subtree signature, so alternative join orders inside one
// Alternatives call share their common subtrees' passes.
type Estimator interface {
	Estimate(ctx context.Context, p *Plan) (*Estimates, error)
}

// Predictor turns a plan plus its estimates into the distribution of
// likely running times. The default is the paper's variance-propagating
// predictor (Section 5) over the calibrated cost units.
type Predictor interface {
	Predict(ctx context.Context, p *Plan, est *Estimates) (*Prediction, error)
}

// Executor runs a plan and returns the measured time in seconds. The
// default simulates the configured machine, seeded deterministically
// per (Config.Seed, query, plan).
type Executor interface {
	Execute(ctx context.Context, q *Query, p *Plan) (float64, error)
}

// ---------------------------------------------------------------------
// Default stage implementations.

// planMemoSize bounds the structural plan memo: serving workloads draw
// queries from small template pools, so a few hundred distinct shapes
// cover any realistic mix while keeping the memo's footprint trivial.
const planMemoSize = 512

// defaultPlanner wraps internal/plan behind a structural memo: plan.Build
// is a pure function of the query's structure and the (immutable)
// catalog — the query name feeds only error messages — so two queries
// with equal fingerprints share one compiled *Plan. The memo is shared
// across every façade derived from one Open (plans do not depend on
// machine profile or sampling ratio), which is what makes per-arrival
// planning in the simulator effectively free. Cached plans are shared
// and read-only; nothing downstream mutates an operator tree.
type defaultPlanner struct {
	cat  *catalog.Catalog
	memo *cache.LRU[string, *Plan]
}

func newDefaultPlanner(cat *catalog.Catalog) *defaultPlanner {
	return &defaultPlanner{cat: cat, memo: cache.NewLRU[string, *Plan](planMemoSize)}
}

// queryFingerprint renders every Query field plan.Build's output depends
// on — tables, predicates, join conditions, aggregate spec — and
// excludes Name, which Build uses only in error text.
func queryFingerprint(q *Query) string {
	var b strings.Builder
	b.Grow(64)
	for _, t := range q.Tables {
		b.WriteString(t)
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for i := range q.Preds {
		p := &q.Preds[i]
		b.WriteString(p.Col)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(p.Op)))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(p.Lo, 10))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(p.Hi, 10))
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, j := range q.Joins {
		b.WriteString(j.LeftTable)
		b.WriteByte('.')
		b.WriteString(j.LeftCol)
		b.WriteByte('=')
		b.WriteString(j.RightTable)
		b.WriteByte('.')
		b.WriteString(j.RightCol)
		b.WriteByte(';')
	}
	if q.Agg != nil {
		b.WriteString("|agg:")
		b.WriteString(q.Agg.GroupCol)
		if q.Agg.SortInput {
			b.WriteString(":sorted")
		}
	}
	return b.String()
}

func (d *defaultPlanner) BuildPlan(ctx context.Context, q *Query) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := queryFingerprint(q)
	if p, ok := d.memo.Get(key); ok {
		return p, nil
	}
	n, err := plan.Build(q, d.cat)
	if err != nil {
		return nil, err
	}
	p := &Plan{root: n, sig: n.String()}
	d.memo.Put(key, p)
	return p, nil
}

func (d *defaultPlanner) Alternatives(ctx context.Context, q *Query, maxAlts int) ([]*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nodes, err := plan.Alternatives(q, d.cat, maxAlts)
	if err != nil {
		return nil, err
	}
	plans := make([]*Plan, 0, len(nodes))
	for _, n := range nodes {
		plans = append(plans, &Plan{root: n, sig: n.String()})
	}
	return plans, nil
}

// defaultEstimator runs the sampling pass through the two-level memo:
// whole plans in the estimate cache's plan section, subplans in its
// subtree section. Namespaced keys keep incompatible Systems apart when
// the cache is shared.
type defaultEstimator struct {
	samples *sample.DB
	cat     *catalog.Catalog
	cache   EstimateCache
	ns      string
}

func (d *defaultEstimator) Estimate(ctx context.Context, p *Plan) (*Estimates, error) {
	if err := p.valid(); err != nil {
		return nil, err
	}
	key := d.ns + "\x00" + p.sig
	est, err := d.cache.getOrCompute(ctx, key, func() (*sample.Estimates, error) {
		return sample.EstimateMemo(ctx, p.root, d.samples, d.cat, d.passMemo(ctx))
	})
	if err != nil {
		return nil, err
	}
	return &Estimates{est: est}, nil
}

// passMemo routes subtree passes through the shared cache under this
// estimator's namespace, carrying the calling request's context so a
// waiter coalesced onto a canceled computation can retry on its own.
func (d *defaultEstimator) passMemo(ctx context.Context) sample.PassMemo {
	return func(key string, compute func() (*sample.Pass, error)) (*sample.Pass, error) {
		return d.cache.getOrComputePass(ctx, d.ns+"\x00"+key, compute)
	}
}

// predMemoSize caps the prediction memo before a generation reset. The
// memo is a plain map rather than an LRU because keys are pointer pairs
// with no eviction-order signal worth tracking; a full reset at the cap
// is cheaper than bookkeeping and the working set (template pool x
// resident estimates) is far below it.
const predMemoSize = 4096

// predKey identifies a prediction by the identity of its inputs: plans
// come from the planner's structural memo and estimates from the shared
// LRU, so while both stay resident the same pointers recur for the same
// logical inputs and equality is exact with zero hashing of strings.
// A fresh defaultPredictor is built per recalibration/swap, so stale
// memos die with their stage.
type predKey struct {
	root *engine.Node
	est  *sample.Estimates
}

// defaultPredictor wraps the core variance-propagating predictor behind
// a pointer-keyed memo: predictions are pure functions of (plan,
// estimates, calibrated units), and the units are fixed for the lifetime
// of one stage instance. Memoized *Prediction values are shared across
// callers and must be treated as read-only (the built-in pipeline never
// mutates one).
type defaultPredictor struct {
	pred *core.Predictor

	mu   sync.Mutex
	memo map[predKey]*Prediction
}

func (d *defaultPredictor) Predict(ctx context.Context, p *Plan, est *Estimates) (*Prediction, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := p.valid(); err != nil {
		return nil, err
	}
	if est == nil || est.est == nil {
		return nil, fmt.Errorf("uaqetp: nil estimates (estimates must come from an Estimator)")
	}
	k := predKey{root: p.root, est: est.est}
	d.mu.Lock()
	v := d.memo[k]
	d.mu.Unlock()
	if v != nil {
		return v, nil
	}
	out, err := d.pred.Predict(p.root, est.est)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.memo == nil || len(d.memo) >= predMemoSize {
		d.memo = make(map[predKey]*Prediction, 64)
	}
	d.memo[k] = out
	d.mu.Unlock()
	return out, nil
}

// simExecutor runs plans on the simulated hardware with the
// deterministic per-call seeding Execute has always used. Plan runs
// (engine.Run) go through the estimate cache's run section: the run
// result is a pure function of the generated database and the plan, so
// repeated executions — and executions by other Systems sharing the
// cache, even on different machine profiles — reuse one run while each
// call still draws its own deterministic measurement stream.
type simExecutor struct {
	db      *engine.DB
	profile *hardware.Profile
	seed    int64
	cache   EstimateCache
	runNS   string
	ver     rng.Version
}

func (x simExecutor) Execute(ctx context.Context, q *Query, p *Plan) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if err := p.valid(); err != nil {
		return 0, err
	}
	_, actual, err := runSimulated(ctx, x.cache, x.runNS, x.db, x.profile, x.seed, x.ver, q, p.root, p.sig)
	return actual, err
}

// runSimulated executes a built plan — memoized in the cache's run
// section — and measures it with the deterministic per-call stream of
// the configured version (see internal/rng). It is the single
// implementation behind the default Executor and System.Measure, so
// their measured times cannot diverge.
func runSimulated(ctx context.Context, c EstimateCache, ns string, db *engine.DB, profile *hardware.Profile, seed int64, ver rng.Version, q *Query, root *engine.Node, sig string) (*engine.OpResult, float64, error) {
	res, err := c.getOrComputeRun(ctx, ns+"\x00"+sig, func() (*engine.OpResult, error) {
		r, err := engine.Run(db, root)
		if err != nil {
			return nil, err
		}
		return stripRows(r), nil
	})
	if err != nil {
		return nil, 0, err
	}
	return res, profile.MeasurePlanSeeded(res, ver, rng.ExecKey(seed, q.Name, sig)), nil
}

// stripRows drops the materialized relations from a freshly executed
// result tree before it enters the run cache: measurement needs only
// the per-operator Counts, and ground-truth reading (System.Measure)
// the nodes, cardinalities, and selectivities — the row data is the
// overwhelming bulk of an OpResult and must not be pinned by the LRU.
// The tree was just built and is exclusively ours, so clearing in
// place is safe.
func stripRows(res *engine.OpResult) *engine.OpResult {
	for _, op := range res.Results() {
		op.Rows, op.Cols = nil, nil
	}
	return res
}

// ---------------------------------------------------------------------
// The hot-swappable predictor handle.

// predictorState is the atomically swappable unit behind a System's
// predictor stage: the active stage plus, when the stage is the
// built-in one, the calibrated cost units it was constructed from
// (nil for custom stages).
type predictorState struct {
	stage Predictor
	units *[hardware.NumUnits]stats.Normal
}

// predictorHandle holds the current predictorState. Each façade derived
// by With (and each tenant in internal/serve) gets its own handle, so a
// swap is local to that façade while the expensive layers stay shared.
type predictorHandle struct {
	v atomic.Pointer[predictorState]
}

func newPredictorHandle(st *predictorState) *predictorHandle {
	h := &predictorHandle{}
	h.v.Store(st)
	return h
}

func (h *predictorHandle) load() *predictorState { return h.v.Load() }

// defaultPredictorState builds the built-in predictor stage for a
// variant over the given units.
func defaultPredictorState(cat *catalog.Catalog, units [hardware.NumUnits]stats.Normal, v Variant) *predictorState {
	return &predictorState{
		stage: &defaultPredictor{pred: core.New(cat, units, core.Config{Variant: v})},
		units: &units,
	}
}

// ---------------------------------------------------------------------
// Stage access, derivation, and swapping.

// SystemOption overrides one pipeline stage when deriving a System via
// With (or at Open time through the corresponding Config field).
type SystemOption func(*System)

// WithPlanner installs a custom Planner stage.
func WithPlanner(p Planner) SystemOption { return func(s *System) { s.planner = p } }

// WithEstimator installs a custom Estimator stage.
func WithEstimator(e Estimator) SystemOption { return func(s *System) { s.estimator = e } }

// WithExecutor installs a custom Executor stage.
func WithExecutor(x Executor) SystemOption { return func(s *System) { s.executor = x } }

// WithPredictor installs a custom Predictor stage behind a fresh
// swappable handle.
func WithPredictor(p Predictor) SystemOption {
	return func(s *System) { s.pred = newPredictorHandle(&predictorState{stage: p}) }
}

// With derives a façade over the same expensive layers — database,
// catalog, calibration, samples, estimate cache — with the given stages
// replaced. The derived System always gets its own predictor handle
// (initialized to the parent's current predictor), so SwapPredictor and
// Recalibrate on the derived façade never affect the parent or
// siblings. With no options it is the cheap way to give each tenant of
// a shared System an independently swappable predictor.
func (s *System) With(opts ...SystemOption) *System {
	derived := *s
	derived.pred = newPredictorHandle(s.pred.load())
	for _, o := range opts {
		if o != nil {
			o(&derived)
		}
	}
	return &derived
}

// Planner returns the active planner stage.
func (s *System) Planner() Planner { return s.planner }

// Estimator returns the active estimator stage.
func (s *System) Estimator() Estimator { return s.estimator }

// Predictor returns the currently installed predictor stage (the value
// a concurrent SwapPredictor may replace at any moment; one call's
// pipeline uses a single consistent stage).
func (s *System) Predictor() Predictor { return s.pred.load().stage }

// Executor returns the active executor stage.
func (s *System) Executor() Executor { return s.executor }

// SwapPredictor atomically replaces the predictor stage behind this
// System and returns the previous stage. In-flight calls finish on the
// stage they started with; calls that begin after the swap see the
// replacement. Only this façade is affected — Systems derived earlier
// or later have their own handles.
func (s *System) SwapPredictor(p Predictor) Predictor {
	old := s.pred.v.Swap(&predictorState{stage: p})
	return old.stage
}

// Recalibrate re-runs cost-unit calibration (internal/calibrate) against
// this System's machine profile with the given seed and atomically swaps
// a predictor built on the fresh units into the façade's handle, without
// dropping in-flight queries. It returns the new unit distributions. The
// current stage must be the built-in predictor (possibly from an earlier
// Recalibrate); a custom stage has no units to recalibrate — swap it
// explicitly with SwapPredictor instead.
func (s *System) Recalibrate(seed int64) ([hardware.NumUnits]stats.Normal, error) {
	cur := s.pred.load()
	if cur.units == nil {
		return [hardware.NumUnits]stats.Normal{}, fmt.Errorf(
			"uaqetp: predictor stage is custom; swap it explicitly with SwapPredictor")
	}
	prof := s.profile
	if s.truth != nil {
		prof = s.truth()
	}
	cal, err := calibrate.Run(prof, calibrate.DefaultConfig(seed))
	if err != nil {
		return [hardware.NumUnits]stats.Normal{}, err
	}
	// Install via compare-and-swap so a concurrent SwapPredictor is
	// never silently overwritten: if the handle moved while we
	// calibrated, re-check the custom-stage guard against the new state
	// before retrying with the fresh units.
	next := defaultPredictorState(s.cat, cal.Units, s.cfg.Variant)
	for !s.pred.v.CompareAndSwap(cur, next) {
		cur = s.pred.load()
		if cur.units == nil {
			return [hardware.NumUnits]stats.Normal{}, fmt.Errorf(
				"uaqetp: predictor stage became custom during recalibration; swap it explicitly with SwapPredictor")
		}
	}
	return cal.Units, nil
}
