package uaqetp

import "testing"

// TestPredictWarmAllocs is the alloc-regression gate on the Predict hot
// path. With the plan memo, estimate cache, and prediction memo warm, a
// Predict call is two memo probes plus the query fingerprint — the seed
// trajectory spent ~366 allocs and ~61 KB per call, the memoized path
// runs near 10 allocs. The budget leaves headroom for map growth and
// interface boxing noise while catching any return of per-call sampling
// or assembly work.
func TestPredictWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	sys := testSystem(t)
	q := joinQuery()
	if _, err := sys.Predict(q); err != nil {
		t.Fatal(err)
	}
	perCall := testing.AllocsPerRun(100, func() {
		if _, err := sys.Predict(q); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 40
	if perCall > budget {
		t.Errorf("warm Predict allocates %.1f allocs/call, budget %d", perCall, budget)
	}
	t.Logf("warm Predict: %.1f allocs/call", perCall)
}
