package uaqetp

import (
	"context"
	"fmt"

	"repro/internal/pool"
)

// BatchOptions configures the deprecated PredictBatch and ExecuteBatch
// wrappers; the context entry points take WithWorkers instead.
type BatchOptions struct {
	// Workers bounds the goroutines working the batch concurrently;
	// 0 selects GOMAXPROCS, 1 degenerates to a serial loop. The returned
	// results are byte-identical for every value.
	Workers int
}

// firstBatchError returns the lowest-index error, wrapped with the
// query it belongs to, or nil.
func firstBatchError(op string, queries []*Query, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("uaqetp: %s query %d (%s): %w", op, i, queryName(queries[i]), err)
		}
	}
	return nil
}

// PredictBatchContext predicts the running-time distribution of every
// query in the batch using a bounded worker pool (sized by WithWorkers)
// and returns the predictions in input order. It is the high-throughput
// counterpart of PredictContext for the paper's batch consumers —
// admission control, scheduling, and least-expected-cost plan selection
// — which need many predictions at once.
//
// Prediction is deterministic, so the result for a fixed Config.Seed is
// identical to a serial PredictContext loop, regardless of the worker
// count. Nil queries are rejected. If any query fails, the first error
// in input order is returned; predictions for the queries that
// succeeded are still returned, with nil entries at failed indexes.
// Once ctx is done, queries not yet started are skipped with ctx.Err()
// and the call returns promptly (errors.Is the returned error against
// the context's error to distinguish cancellation from query failures).
func (s *System) PredictBatchContext(ctx context.Context, queries []*Query, opts ...CallOption) ([]*Prediction, error) {
	o := newCallOpts(opts)
	preds := make([]*Prediction, len(queries))
	errs := pool.RunCtx(ctx, len(queries), o.workers, func(i int) error {
		if queries[i] == nil {
			return fmt.Errorf("nil query")
		}
		var err error
		preds[i], err = s.PredictContext(ctx, queries[i], opts...)
		return err
	})
	return preds, firstBatchError("PredictBatch", queries, errs)
}

// ExecuteBatchContext runs every query through the Executor stage with a
// bounded worker pool, returning the measured times in input order.
// Execution is deterministic per query (see ExecuteContext), so the
// result does not depend on the worker count. Error and cancellation
// semantics match PredictBatchContext.
func (s *System) ExecuteBatchContext(ctx context.Context, queries []*Query, opts ...CallOption) ([]float64, error) {
	o := newCallOpts(opts)
	times := make([]float64, len(queries))
	errs := pool.RunCtx(ctx, len(queries), o.workers, func(i int) error {
		if queries[i] == nil {
			return fmt.Errorf("nil query")
		}
		var err error
		times[i], err = s.ExecuteContext(ctx, queries[i], opts...)
		return err
	})
	return times, firstBatchError("ExecuteBatch", queries, errs)
}

// PredictBatch predicts every query in the batch over a bounded worker
// pool.
//
// Deprecated: use PredictBatchContext with WithWorkers.
func (s *System) PredictBatch(queries []*Query, opts BatchOptions) ([]*Prediction, error) {
	return s.PredictBatchContext(context.Background(), queries, WithWorkers(opts.Workers))
}

// ExecuteBatch runs every query on the simulated hardware over a
// bounded worker pool.
//
// Deprecated: use ExecuteBatchContext with WithWorkers.
func (s *System) ExecuteBatch(queries []*Query, opts BatchOptions) ([]float64, error) {
	return s.ExecuteBatchContext(context.Background(), queries, WithWorkers(opts.Workers))
}

// MemoStats reports the hit/miss counters of the whole-plan memo, for
// observability in batch-serving deployments. When the System runs on a
// shared EstimateCache the counters aggregate over every sharer;
// CacheStats exposes the full snapshot including the subtree section.
func (s *System) MemoStats() (hits, misses uint64) {
	cs := s.estCache.Stats()
	return cs.Hits, cs.Misses
}

// CacheStats snapshots the estimate cache backing this System —
// aggregated across shards, and across tenants when the cache is shared.
func (s *System) CacheStats() CacheStats { return s.estCache.Stats() }

// PredictPlanned returns the prediction together with the plan's
// canonical signature.
//
// Deprecated: use PredictPlannedContext.
func (s *System) PredictPlanned(q *Query) (*Prediction, string, error) {
	return s.PredictPlannedContext(context.Background(), q)
}

func queryName(q *Query) string {
	if q == nil {
		return "<nil>"
	}
	return q.Name
}
