package uaqetp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// BatchOptions configures PredictBatch and ExecuteBatch.
type BatchOptions struct {
	// Workers bounds the goroutines working the batch concurrently;
	// 0 selects GOMAXPROCS, 1 degenerates to a serial loop. The returned
	// results are byte-identical for every value.
	Workers int
}

// runBatch dispatches item indices 0..n-1 to a bounded worker pool and
// returns the per-item errors. do(i) must write its result to slot i of
// a caller-owned slice; slots are distinct, so no locking is needed.
func runBatch(n, workers int, do func(i int) error) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = do(i)
			}
		}()
	}
	wg.Wait()
	return errs
}

// firstBatchError returns the lowest-index error, wrapped with the
// query it belongs to, or nil.
func firstBatchError(op string, queries []*Query, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("uaqetp: %s query %d (%s): %w", op, i, queryName(queries[i]), err)
		}
	}
	return nil
}

// PredictBatch predicts the running-time distribution of every query in
// the batch using a bounded worker pool and returns the predictions in
// input order. It is the high-throughput counterpart of Predict for the
// paper's batch consumers — admission control, scheduling, and
// least-expected-cost plan selection — which need many predictions at
// once.
//
// Prediction is deterministic, so the result for a fixed Config.Seed is
// identical to calling Predict on each query serially, regardless of
// Workers. Nil queries are rejected. If any query fails, PredictBatch
// returns the first error in input order; predictions for the queries
// that succeeded are still returned, with nil entries at failed indexes.
func (s *System) PredictBatch(queries []*Query, opts BatchOptions) ([]*Prediction, error) {
	preds := make([]*Prediction, len(queries))
	errs := runBatch(len(queries), opts.Workers, func(i int) error {
		if queries[i] == nil {
			return fmt.Errorf("nil query")
		}
		var err error
		preds[i], err = s.Predict(queries[i])
		return err
	})
	return preds, firstBatchError("PredictBatch", queries, errs)
}

// ExecuteBatch runs every query on the simulated hardware with a bounded
// worker pool, returning the measured times in input order. Execution is
// deterministic per query (see Execute), so the result does not depend
// on Workers. Error semantics match PredictBatch.
func (s *System) ExecuteBatch(queries []*Query, opts BatchOptions) ([]float64, error) {
	times := make([]float64, len(queries))
	errs := runBatch(len(queries), opts.Workers, func(i int) error {
		if queries[i] == nil {
			return fmt.Errorf("nil query")
		}
		var err error
		times[i], err = s.Execute(queries[i])
		return err
	})
	return times, firstBatchError("ExecuteBatch", queries, errs)
}

// MemoStats reports the hit/miss counters of the internal plan-signature
// memo, for observability in batch-serving deployments.
func (s *System) MemoStats() (hits, misses uint64) { return s.memo.Stats() }

func queryName(q *Query) string {
	if q == nil {
		return "<nil>"
	}
	return q.Name
}
