package uaqetp

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/pool"
)

// BatchOptions configures PredictBatch and ExecuteBatch.
type BatchOptions struct {
	// Workers bounds the goroutines working the batch concurrently;
	// 0 selects GOMAXPROCS, 1 degenerates to a serial loop. The returned
	// results are byte-identical for every value.
	Workers int
}

// firstBatchError returns the lowest-index error, wrapped with the
// query it belongs to, or nil.
func firstBatchError(op string, queries []*Query, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("uaqetp: %s query %d (%s): %w", op, i, queryName(queries[i]), err)
		}
	}
	return nil
}

// PredictBatch predicts the running-time distribution of every query in
// the batch using a bounded worker pool and returns the predictions in
// input order. It is the high-throughput counterpart of Predict for the
// paper's batch consumers — admission control, scheduling, and
// least-expected-cost plan selection — which need many predictions at
// once.
//
// Prediction is deterministic, so the result for a fixed Config.Seed is
// identical to calling Predict on each query serially, regardless of
// Workers. Nil queries are rejected. If any query fails, PredictBatch
// returns the first error in input order; predictions for the queries
// that succeeded are still returned, with nil entries at failed indexes.
func (s *System) PredictBatch(queries []*Query, opts BatchOptions) ([]*Prediction, error) {
	preds := make([]*Prediction, len(queries))
	errs := pool.Run(len(queries), opts.Workers, func(i int) error {
		if queries[i] == nil {
			return fmt.Errorf("nil query")
		}
		var err error
		preds[i], err = s.Predict(queries[i])
		return err
	})
	return preds, firstBatchError("PredictBatch", queries, errs)
}

// ExecuteBatch runs every query on the simulated hardware with a bounded
// worker pool, returning the measured times in input order. Execution is
// deterministic per query (see Execute), so the result does not depend
// on Workers. Error semantics match PredictBatch.
func (s *System) ExecuteBatch(queries []*Query, opts BatchOptions) ([]float64, error) {
	times := make([]float64, len(queries))
	errs := pool.Run(len(queries), opts.Workers, func(i int) error {
		if queries[i] == nil {
			return fmt.Errorf("nil query")
		}
		var err error
		times[i], err = s.Execute(queries[i])
		return err
	})
	return times, firstBatchError("ExecuteBatch", queries, errs)
}

// MemoStats reports the hit/miss counters of the plan-signature memo,
// for observability in batch-serving deployments. When the System runs
// on a shared EstimateCache the counters aggregate over every sharer;
// CacheStats exposes the full snapshot.
func (s *System) MemoStats() (hits, misses uint64) {
	cs := s.estCache.Stats()
	return cs.Hits, cs.Misses
}

// CacheStats snapshots the estimate cache backing this System —
// aggregated across shards, and across tenants when the cache is shared.
func (s *System) CacheStats() CacheStats { return s.estCache.Stats() }

// PredictPlanned returns the prediction together with the plan's
// canonical signature, so serving-path callers that need both (e.g. for
// per-signature feedback) build the physical plan once instead of
// calling Predict and Plan separately.
func (s *System) PredictPlanned(q *Query) (*Prediction, string, error) {
	p, err := plan.Build(q, s.cat)
	if err != nil {
		return nil, "", err
	}
	sig := p.String()
	est, err := s.estimatesSig(p, sig)
	if err != nil {
		return nil, "", err
	}
	pred, err := s.pred.Predict(p, est)
	if err != nil {
		return nil, "", err
	}
	return pred, sig, nil
}

func queryName(q *Query) string {
	if q == nil {
		return "<nil>"
	}
	return q.Name
}
