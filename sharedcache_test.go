package uaqetp

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// openShared opens two Systems with identical configs on one shared
// cache, as the serving layer does for two tenants over the same
// catalog.
func openShared(t *testing.T) (*System, *System, *MemoryCache) {
	t.Helper()
	shared := NewEstimateCache(128)
	cfg := DefaultConfig()
	cfg.Cache = shared
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b, shared
}

func TestSharedCacheCrossSystemHits(t *testing.T) {
	a, b, shared := openShared(t)
	qs, err := a.GenerateWorkload(workload.SelJoin, 6)
	if err != nil {
		t.Fatal(err)
	}
	predsA, err := a.PredictBatch(qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	afterA := shared.Stats()
	if afterA.Hits+afterA.Misses == 0 {
		t.Fatal("no cache traffic from tenant A")
	}

	// Tenant B predicts the same workload: every sampling pass must be a
	// cross-tenant hit — no new misses — and the predictions must be
	// identical (shared estimates, same calibration seeds).
	predsB, err := b.PredictBatch(qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	afterB := shared.Stats()
	if afterB.Misses != afterA.Misses {
		t.Errorf("tenant B caused %d fresh sampling passes, want 0 (misses %d -> %d)",
			afterB.Misses-afterA.Misses, afterA.Misses, afterB.Misses)
	}
	if afterB.Hits <= afterA.Hits {
		t.Errorf("no cross-tenant hits: hits %d -> %d", afterA.Hits, afterB.Hits)
	}
	// Map-iteration order inside the covariance engine permutes float
	// products, so equality holds up to roundoff (as in the exper tests).
	eq := func(x, y float64) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		m := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		return d <= 1e-12*m
	}
	for i := range predsA {
		if !eq(predsA[i].Mean(), predsB[i].Mean()) || !eq(predsA[i].Sigma(), predsB[i].Sigma()) {
			t.Errorf("query %d: tenant predictions differ: %v vs %v",
				i, predsA[i].Dist, predsB[i].Dist)
		}
	}
}

func TestSharedCacheNamespacesIncompatibleConfigs(t *testing.T) {
	shared := NewEstimateCache(128)
	cfg := DefaultConfig()
	cfg.Cache = shared
	a, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.SamplingRatio = 0.02 // different samples: must not share passes
	b, err := Open(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := a.GenerateWorkload(workload.SelJoin, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.PredictBatch(qs, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	misses := shared.Stats().Misses
	if _, err := b.PredictBatch(qs, BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	after := shared.Stats()
	if after.Misses == misses {
		t.Error("incompatible tenant shared sampling passes: no fresh misses")
	}
}

func TestWithVariantSharesCacheAndDiffers(t *testing.T) {
	sys, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sys.GenerateWorkload(workload.SelJoin, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sys.PredictBatch(qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	misses := sys.CacheStats().Misses

	noc := sys.WithVariant(NoVarC)
	derived, err := noc.PredictBatch(qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The variant system shares the estimate cache, so no new sampling
	// passes run...
	if after := sys.CacheStats().Misses; after != misses {
		t.Errorf("variant system re-ran %d sampling passes", after-misses)
	}
	// ...but drops Var[c], so its sigmas must shrink.
	var sBase, sNoC float64
	for i := range base {
		sBase += base[i].Sigma()
		sNoC += derived[i].Sigma()
	}
	if sNoC >= sBase {
		t.Errorf("NoVar[c] sigma sum %v not below All %v", sNoC, sBase)
	}
	if same := sys.WithVariant(All); same != sys {
		t.Error("WithVariant(same) should return the receiver")
	}
}

func TestMeasureMatchesExecute(t *testing.T) {
	sys, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sys.GenerateWorkload(workload.SelJoin, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		actual, err := sys.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sys.Measure(q)
		if err != nil {
			t.Fatal(err)
		}
		if m.Actual != actual {
			t.Errorf("%s: Measure.Actual=%v, Execute=%v", q.Name, m.Actual, actual)
		}
		if m.SampleCost <= 0 || m.FullCost <= 0 || m.SampleCost >= m.FullCost {
			t.Errorf("%s: implausible costs sample=%v full=%v", q.Name, m.SampleCost, m.FullCost)
		}
		if len(m.Ops) == 0 {
			t.Errorf("%s: no selectivity observations", q.Name)
		}
	}
}

func TestPredictionPerUnitSumsToMean(t *testing.T) {
	sys, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := sys.GenerateWorkload(workload.SelJoin, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		pred, err := sys.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range pred.PerUnit {
			if v < 0 {
				t.Errorf("%s: negative per-unit mean %v", q.Name, v)
			}
			sum += v
		}
		if rel := (sum - pred.Mean()) / pred.Mean(); rel > 1e-9 || rel < -1e-9 {
			t.Errorf("%s: per-unit sum %v != mean %v", q.Name, sum, pred.Mean())
		}
		if du := pred.DominantUnit(); pred.PerUnit[du] <= 0 {
			t.Errorf("%s: dominant unit %v has zero share", q.Name, du)
		}
	}
}
