package uaqetp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/sample"
)

// DefaultCacheShards is the shard count of an EstimateCache: enough to
// keep a handful of tenants from contending on one lock without wasting
// capacity granularity.
const DefaultCacheShards = 16

// passCapacityFactor sizes the subtree-pass section relative to the
// whole-plan section: a plan holds a handful of cacheable subplans, so
// the pass LRU needs proportionally more entries to keep a plan's
// subtrees resident alongside the plan itself.
const passCapacityFactor = 4

// CacheStats is a point-in-time snapshot of an EstimateCache's counters,
// aggregated across shards. Hits/Misses/Evictions/Entries cover the
// whole-plan section; the Subtree* counters cover the subplan-pass
// section that AlternativesContext and ChoosePlanContext lean on when
// candidate join orders share lower subtrees; the Run* counters cover
// the run-result section memoizing plan executions (engine.Run), whose
// keys are machine- and sampling-ratio-independent, so experiment grids
// over several machine profiles execute each plan once.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Shards    int    `json:"shards"`

	SubtreeHits      uint64 `json:"subtree_hits"`
	SubtreeMisses    uint64 `json:"subtree_misses"`
	SubtreeEvictions uint64 `json:"subtree_evictions"`
	SubtreeEntries   int    `json:"subtree_entries"`

	RunHits      uint64 `json:"run_hits"`
	RunMisses    uint64 `json:"run_misses"`
	RunEvictions uint64 `json:"run_evictions"`
	RunEntries   int    `json:"run_entries"`
}

// flight is one in-progress computation; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// flightGroup coalesces concurrent computations per key in front of a
// sharded LRU: one caller computes, everyone else waits for its result.
// Failed computations are not cached.
//
// Cancellation is per caller, not per flight: a computation runs under
// the context of whichever caller started it, so when that caller
// cancels mid-compute the flight fails with a context error — but a
// waiter whose own context is still live does not inherit the failure.
// It loops back, finds the flight gone, and computes under its own
// context (re-coalescing with any other retriers). A waiter whose own
// context fires while waiting abandons the flight with its own ctx.Err.
type flightGroup[V any] struct {
	mu sync.Mutex
	m  map[string]*flight[V]
}

// isContextErr reports whether a computation failed because some
// context fired (rather than because the work itself is faulty).
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (g *flightGroup[V]) do(ctx context.Context, key string, lru *cache.Sharded[V], compute func() (V, error)) (V, error) {
	for {
		if v, ok := lru.Get(key); ok {
			return v, nil
		}
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flight[V])
		}
		if f, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				var zero V
				return zero, ctx.Err()
			}
			if f.err == nil {
				return f.val, nil
			}
			if isContextErr(f.err) && ctx.Err() == nil {
				// The computing caller was canceled, not us: retry under
				// our own context instead of inheriting its failure.
				continue
			}
			return f.val, f.err
		}
		f := &flight[V]{done: make(chan struct{})}
		g.m[key] = f
		g.mu.Unlock()

		f.val, f.err = compute()
		if f.err == nil {
			lru.Put(key, f.val)
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		return f.val, f.err
	}
}

// EstimateCache is the cache seam of the serving stack: the three
// memoization sections every System resolves through — whole-plan
// sampling passes ("estimate"), subplan passes ("subtree"), and plan
// executions ("run") — behind one interface, so the storage tier is a
// Config.Cache choice rather than a hard-wired in-process LRU. The
// in-process tier is MemoryCache (NewEstimateCache); TieredCache wraps
// it with a simulated remote tier (deterministic hit-rate + latency
// model) for sharded-serving scenarios where part of the key space
// would live off-box. The section methods are unexported on purpose:
// implementations live in this package, next to the key construction
// they must respect, while every consumer (serve, sim, exper) depends
// only on the interface.
type EstimateCache interface {
	getOrCompute(ctx context.Context, key string, compute func() (*sample.Estimates, error)) (*sample.Estimates, error)
	getOrComputePass(ctx context.Context, key string, compute func() (*sample.Pass, error)) (*sample.Pass, error)
	getOrComputeRun(ctx context.Context, key string, compute func() (*engine.OpResult, error)) (*engine.OpResult, error)
	// Stats aggregates the hit/miss/eviction counters of all sections.
	Stats() CacheStats
}

// MemoryCache is the in-process EstimateCache tier: it memoizes
// sampling work by namespaced key in sharded LRU sections — whole-plan
// passes by canonical plan signature, and subplan passes by canonical
// subtree signature (so alternative join orders share their common
// subtrees' work even though their whole-plan signatures differ). A
// single cache may back many Systems: tenants whose configurations
// generate the same database and samples (same DB kind, sampling ratio,
// and seed) share both sections, which is the point of multi-tenant
// serving over a common catalog. Concurrent requests for the same key —
// from one System or several — are coalesced onto a single computation.
//
// Estimates and passes are immutable once built, so a cached value may
// be served to any number of concurrent readers.
type MemoryCache struct {
	plans  *cache.Sharded[*sample.Estimates]
	passes *cache.Sharded[*sample.Pass]
	runs   *cache.Sharded[*engine.OpResult]

	planFlight flightGroup[*sample.Estimates]
	passFlight flightGroup[*sample.Pass]
	runFlight  flightGroup[*engine.OpResult]
}

// NewEstimateCache returns the in-process cache tier: a sharded
// estimate cache holding at most capacity whole-plan passes (and
// passCapacityFactor times as many subtree passes) across
// DefaultCacheShards shards; capacity < 1 selects the per-System
// default.
func NewEstimateCache(capacity int) *MemoryCache {
	if capacity < 1 {
		capacity = estimateMemoSize
	}
	return &MemoryCache{
		plans:  cache.NewSharded[*sample.Estimates](capacity, DefaultCacheShards),
		passes: cache.NewSharded[*sample.Pass](capacity*passCapacityFactor, DefaultCacheShards),
		runs:   cache.NewSharded[*engine.OpResult](capacity, DefaultCacheShards),
	}
}

// getOrCompute returns the cached whole-plan estimates for key,
// computing and caching them via compute on a miss. Concurrent callers
// with the same key wait for one computation instead of racing.
func (c *MemoryCache) getOrCompute(ctx context.Context, key string, compute func() (*sample.Estimates, error)) (*sample.Estimates, error) {
	return c.planFlight.do(ctx, key, c.plans, compute)
}

// getOrComputePass is getOrCompute for the subtree-pass section.
func (c *MemoryCache) getOrComputePass(ctx context.Context, key string, compute func() (*sample.Pass, error)) (*sample.Pass, error) {
	return c.passFlight.do(ctx, key, c.passes, compute)
}

// getOrComputeRun is getOrCompute for the run-result section: plan
// executions (engine.Run) memoized under machine-independent keys.
func (c *MemoryCache) getOrComputeRun(ctx context.Context, key string, compute func() (*engine.OpResult, error)) (*engine.OpResult, error) {
	return c.runFlight.do(ctx, key, c.runs, compute)
}

// Stats aggregates the hit/miss/eviction counters of all sections
// across shards.
func (c *MemoryCache) Stats() CacheStats {
	p := c.plans.Snapshot()
	sp := c.passes.Snapshot()
	rn := c.runs.Snapshot()
	return CacheStats{
		Hits: p.Hits, Misses: p.Misses, Evictions: p.Evictions,
		Entries: p.Entries, Shards: c.plans.NumShards(),
		SubtreeHits: sp.Hits, SubtreeMisses: sp.Misses,
		SubtreeEvictions: sp.Evictions, SubtreeEntries: sp.Entries,
		RunHits: rn.Hits, RunMisses: rn.Misses,
		RunEvictions: rn.Evictions, RunEntries: rn.Entries,
	}
}

// estimateNamespace fingerprints everything that determines a sampling
// pass besides the plan itself: the generated database (DB kind + seed)
// and the offline samples drawn from it (sampling ratio). Machine and
// predictor variant do not enter — estimates are identical across them,
// so tenants differing only there still share passes.
func estimateNamespace(cfg Config) string {
	return fmt.Sprintf("%v|%g|%d", cfg.DB, cfg.SamplingRatio, cfg.Seed)
}

// runNamespace fingerprints everything that determines a plan execution
// (engine.Run): the generated database only. Machine profile and
// sampling ratio do not enter — run results (cardinalities, resource
// counts, output relations) are identical across them — so experiment
// grids over several machines or sampling ratios execute each distinct
// plan once and share the result through the cache's run section.
func runNamespace(cfg Config) string {
	return fmt.Sprintf("%v|%d", cfg.DB, cfg.Seed)
}
