package uaqetp

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/sample"
)

// DefaultCacheShards is the shard count of an EstimateCache: enough to
// keep a handful of tenants from contending on one lock without wasting
// capacity granularity.
const DefaultCacheShards = 16

// passCapacityFactor sizes the subtree-pass section relative to the
// whole-plan section: a plan holds a handful of cacheable subplans, so
// the pass LRU needs proportionally more entries to keep a plan's
// subtrees resident alongside the plan itself.
const passCapacityFactor = 4

// CacheStats is a point-in-time snapshot of an EstimateCache's counters,
// aggregated across shards. Hits/Misses/Evictions/Entries cover the
// whole-plan section; the Subtree* counters cover the subplan-pass
// section that AlternativesContext and ChoosePlanContext lean on when
// candidate join orders share lower subtrees.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Shards    int    `json:"shards"`

	SubtreeHits      uint64 `json:"subtree_hits"`
	SubtreeMisses    uint64 `json:"subtree_misses"`
	SubtreeEvictions uint64 `json:"subtree_evictions"`
	SubtreeEntries   int    `json:"subtree_entries"`
}

// flight is one in-progress computation; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// flightGroup coalesces concurrent computations per key in front of a
// sharded LRU: one caller computes, everyone else waits for its result.
// Failed computations are not cached. Note that waiters inherit the
// computing caller's outcome — if that caller's context is canceled
// mid-compute, waiters see the cancellation error too and may retry.
type flightGroup[V any] struct {
	mu sync.Mutex
	m  map[string]*flight[V]
}

func (g *flightGroup[V]) do(key string, lru *cache.Sharded[V], compute func() (V, error)) (V, error) {
	if v, ok := lru.Get(key); ok {
		return v, nil
	}
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight[V])
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = compute()
	if f.err == nil {
		lru.Put(key, f.val)
	}
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err
}

// EstimateCache memoizes sampling work by namespaced key in two sharded
// LRU sections: whole-plan passes by canonical plan signature, and
// subplan passes by canonical subtree signature (so alternative join
// orders share their common subtrees' work even though their whole-plan
// signatures differ). A single cache may back many Systems: tenants
// whose configurations generate the same database and samples (same DB
// kind, sampling ratio, and seed) share both sections, which is the
// point of multi-tenant serving over a common catalog. Concurrent
// requests for the same key — from one System or several — are
// coalesced onto a single computation.
//
// Estimates and passes are immutable once built, so a cached value may
// be served to any number of concurrent readers.
type EstimateCache struct {
	plans  *cache.Sharded[*sample.Estimates]
	passes *cache.Sharded[*sample.Pass]

	planFlight flightGroup[*sample.Estimates]
	passFlight flightGroup[*sample.Pass]
}

// NewEstimateCache returns a sharded estimate cache holding at most
// capacity whole-plan passes (and passCapacityFactor times as many
// subtree passes) across DefaultCacheShards shards; capacity < 1
// selects the per-System default.
func NewEstimateCache(capacity int) *EstimateCache {
	if capacity < 1 {
		capacity = estimateMemoSize
	}
	return &EstimateCache{
		plans:  cache.NewSharded[*sample.Estimates](capacity, DefaultCacheShards),
		passes: cache.NewSharded[*sample.Pass](capacity*passCapacityFactor, DefaultCacheShards),
	}
}

// getOrCompute returns the cached whole-plan estimates for key,
// computing and caching them via compute on a miss. Concurrent callers
// with the same key wait for one computation instead of racing.
func (c *EstimateCache) getOrCompute(key string, compute func() (*sample.Estimates, error)) (*sample.Estimates, error) {
	return c.planFlight.do(key, c.plans, compute)
}

// getOrComputePass is getOrCompute for the subtree-pass section.
func (c *EstimateCache) getOrComputePass(key string, compute func() (*sample.Pass, error)) (*sample.Pass, error) {
	return c.passFlight.do(key, c.passes, compute)
}

// Stats aggregates the hit/miss/eviction counters of both sections
// across shards.
func (c *EstimateCache) Stats() CacheStats {
	p := c.plans.Snapshot()
	sp := c.passes.Snapshot()
	return CacheStats{
		Hits: p.Hits, Misses: p.Misses, Evictions: p.Evictions,
		Entries: p.Entries, Shards: c.plans.NumShards(),
		SubtreeHits: sp.Hits, SubtreeMisses: sp.Misses,
		SubtreeEvictions: sp.Evictions, SubtreeEntries: sp.Entries,
	}
}

// estimateNamespace fingerprints everything that determines a sampling
// pass besides the plan itself: the generated database (DB kind + seed)
// and the offline samples drawn from it (sampling ratio). Machine and
// predictor variant do not enter — estimates are identical across them,
// so tenants differing only there still share passes.
func estimateNamespace(cfg Config) string {
	return fmt.Sprintf("%v|%g|%d", cfg.DB, cfg.SamplingRatio, cfg.Seed)
}
