package uaqetp

import (
	"fmt"
	"sync"

	"repro/internal/cache"
	"repro/internal/sample"
)

// DefaultCacheShards is the shard count of an EstimateCache: enough to
// keep a handful of tenants from contending on one lock without wasting
// capacity granularity.
const DefaultCacheShards = 16

// CacheStats is a point-in-time snapshot of an EstimateCache's counters,
// aggregated across shards.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Shards    int    `json:"shards"`
}

// EstimateCache memoizes sampling passes by namespaced plan signature in
// a sharded LRU. A single cache may back many Systems: tenants whose
// configurations generate the same database and samples (same DB kind,
// sampling ratio, and seed) share sampling passes, which is the point of
// multi-tenant serving over a common catalog. Concurrent requests for
// the same key — from one System or several — are coalesced onto a
// single computation.
//
// Estimates are immutable once built, so a cached value may be served to
// any number of concurrent readers.
type EstimateCache struct {
	lru *cache.Sharded[*sample.Estimates]

	// flight coalesces concurrent sampling passes per key.
	flightMu sync.Mutex
	flight   map[string]*estFlight
}

// estFlight is one in-progress sampling pass; waiters block on done.
type estFlight struct {
	done chan struct{}
	est  *sample.Estimates
	err  error
}

// NewEstimateCache returns a sharded estimate cache holding at most
// capacity sampling passes across DefaultCacheShards shards; capacity
// < 1 selects the per-System default.
func NewEstimateCache(capacity int) *EstimateCache {
	if capacity < 1 {
		capacity = estimateMemoSize
	}
	return &EstimateCache{
		lru:    cache.NewSharded[*sample.Estimates](capacity, DefaultCacheShards),
		flight: make(map[string]*estFlight),
	}
}

// getOrCompute returns the cached estimates for key, computing and
// caching them via compute on a miss. Concurrent callers with the same
// key wait for one computation instead of racing.
func (c *EstimateCache) getOrCompute(key string, compute func() (*sample.Estimates, error)) (*sample.Estimates, error) {
	if est, ok := c.lru.Get(key); ok {
		return est, nil
	}
	c.flightMu.Lock()
	if f, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		<-f.done
		return f.est, f.err
	}
	f := &estFlight{done: make(chan struct{})}
	c.flight[key] = f
	c.flightMu.Unlock()

	f.est, f.err = compute()
	if f.err == nil {
		c.lru.Put(key, f.est)
	}
	c.flightMu.Lock()
	delete(c.flight, key)
	c.flightMu.Unlock()
	close(f.done)
	return f.est, f.err
}

// Stats aggregates the hit/miss/eviction counters across shards.
func (c *EstimateCache) Stats() CacheStats {
	s := c.lru.Snapshot()
	return CacheStats{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Entries: s.Entries, Shards: c.lru.NumShards(),
	}
}

// estimateNamespace fingerprints everything that determines a sampling
// pass besides the plan itself: the generated database (DB kind + seed)
// and the offline samples drawn from it (sampling ratio). Machine and
// predictor variant do not enter — estimates are identical across them,
// so tenants differing only there still share passes.
func estimateNamespace(cfg Config) string {
	return fmt.Sprintf("%v|%g|%d", cfg.DB, cfg.SamplingRatio, cfg.Seed)
}
